// Package ufab's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation. Each benchmark runs the
// corresponding experiment at bench scale (Options.Quick) and reports the
// figure's headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in one pass. For full-scale runs use
// cmd/ufabsim.
package ufab

import (
	"fmt"
	mrand "math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ufab/internal/ctlplane"
	"ufab/internal/experiments"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

// runExperiment executes the experiment once per benchmark iteration and
// reports its metrics on the last iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiments.Find(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = e.Run(experiments.Options{Quick: true, Seed: 1})
	}
	m := rep.Metrics()
	for _, name := range rep.MetricNames() {
		b.ReportMetric(m[name], name)
	}
}

// BenchmarkFig01ECSMotivation — bursty interference inflates tail RTT at
// low average load (Fig 1).
func BenchmarkFig01ECSMotivation(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig02EBSMotivation — storage tail TCT under steady moderate
// load (Fig 2).
func BenchmarkFig02EBSMotivation(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig03HashPolarization — ECMP load imbalance across equivalent
// uplinks (Fig 3).
func BenchmarkFig03HashPolarization(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig04IncastCDF — Case-1 incast RTT vs degree (Fig 4).
func BenchmarkFig04IncastCDF(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig05PathMigration — Case-2 guarantee-breaking migration
// (Fig 5).
func BenchmarkFig05PathMigration(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig11BandwidthEvolution — guarantees + work conservation under
// churn (Fig 11).
func BenchmarkFig11BandwidthEvolution(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12IncastBounded — 14-to-1 incast convergence and bounded
// latency (Fig 12).
func BenchmarkFig12IncastBounded(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13Memcached — Memcached QPS/QCT under MongoDB background
// (Fig 13).
func BenchmarkFig13Memcached(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14EBS — EBS task completion times (Fig 14).
func BenchmarkFig14EBS(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15HundredGE — 100GE predictability and probing overhead
// (Fig 15).
func BenchmarkFig15HundredGE(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16DynamicWorkload — 90-to-1 on/off dynamics (Fig 16).
func BenchmarkFig16DynamicWorkload(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17RealWorkload — oversubscription × load sweep with
// empirical flow sizes (Fig 17).
func BenchmarkFig17RealWorkload(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18Sensitivity — freeze window and probing frequency
// (Fig 18).
func BenchmarkFig18Sensitivity(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19ControlLaws — primal-control reaction delay (Fig 19 /
// Appendix C).
func BenchmarkFig19ControlLaws(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkFig20AsyncResponses — convergence under heterogeneous response
// delays (Fig 20 / Appendix D).
func BenchmarkFig20AsyncResponses(b *testing.B) { runExperiment(b, "fig20") }

// BenchmarkTable3EdgeResources — μFAB-E FPGA resource model (Table 3).
func BenchmarkTable3EdgeResources(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTable4CoreResources — μFAB-C switch resource model (Table 4).
func BenchmarkTable4CoreResources(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkAblations — design-choice ablations (two-stage admission, GP,
// migration, L_w) from DESIGN.md.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "abl") }

// BenchmarkAuditOverhead pins the online predictability auditor's
// marginal cost: the flap fault experiment (chaos events, excuse windows,
// context capture — the auditor's worst case) is timed telemetry-only and
// audited, and the delta is reported as overhead. The result is also
// emitted as BENCH_audit.json so CI can track the trajectory across
// commits.
func BenchmarkAuditOverhead(b *testing.B) {
	e := experiments.Find("flap")
	if e == nil {
		b.Fatal("unknown experiment flap")
	}
	var telem, audited time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		e.Run(experiments.Options{Quick: true, Seed: 1, Telemetry: true})
		telem += time.Since(t0)
		t1 := time.Now()
		e.Run(experiments.Options{Quick: true, Seed: 1, Audit: true})
		audited += time.Since(t1)
	}
	nsTelem := float64(telem.Nanoseconds()) / float64(b.N)
	nsAudited := float64(audited.Nanoseconds()) / float64(b.N)
	overheadPct := (nsAudited - nsTelem) / nsTelem * 100
	b.ReportMetric(nsTelem, "telemetry_ns/op")
	b.ReportMetric(nsAudited, "audited_ns/op")
	b.ReportMetric(overheadPct, "audit_overhead_pct")
	out := fmt.Sprintf(`{"benchmark":"audit_overhead","experiment":"flap","iterations":%d,"telemetry_ns_per_op":%.0f,"audited_ns_per_op":%.0f,"overhead_pct":%.2f}`+"\n",
		b.N, nsTelem, nsAudited, overheadPct)
	if err := os.WriteFile("BENCH_audit.json", []byte(out), 0o644); err != nil {
		b.Fatalf("write BENCH_audit.json: %v", err)
	}
}

// BenchmarkObservability pins the metrics plane's marginal cost: the flap
// fault experiment (chaos events, probe churn, migrations — the heaviest
// producer of histogram observations and span-tagged trace events) is
// timed bare and with the full telemetry plane attached, and the delta is
// reported as overhead. The trace/histogram volume the instrumented run
// produced is reported alongside, so a cost regression can be attributed
// to volume vs per-record cost. The result is also emitted as
// BENCH_obs.json so CI can track the trajectory across commits.
func BenchmarkObservability(b *testing.B) {
	e := experiments.Find("flap")
	if e == nil {
		b.Fatal("unknown experiment flap")
	}
	var bare, instrumented time.Duration
	var traceEvents uint64
	var histograms, histObservations int
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		e.Run(experiments.Options{Quick: true, Seed: 1})
		bare += time.Since(t0)
		t1 := time.Now()
		rep := e.Run(experiments.Options{Quick: true, Seed: 1, Telemetry: true})
		instrumented += time.Since(t1)
		traceEvents, _ = rep.Reg.TraceTotals()
		histograms = 0
		histObservations = 0
		for _, h := range rep.Reg.Snapshot().Histograms {
			histograms++
			histObservations += int(h.Count)
		}
	}
	nsBare := float64(bare.Nanoseconds()) / float64(b.N)
	nsInstr := float64(instrumented.Nanoseconds()) / float64(b.N)
	overheadPct := (nsInstr - nsBare) / nsBare * 100
	b.ReportMetric(nsBare, "bare_ns/op")
	b.ReportMetric(nsInstr, "instrumented_ns/op")
	b.ReportMetric(overheadPct, "telemetry_overhead_pct")
	b.ReportMetric(float64(traceEvents), "trace_events")
	b.ReportMetric(float64(histObservations), "hist_observations")
	out := fmt.Sprintf(`{"benchmark":"observability_overhead","experiment":"flap","iterations":%d,"bare_ns_per_op":%.0f,"instrumented_ns_per_op":%.0f,"overhead_pct":%.2f,"trace_events":%d,"histograms":%d,"hist_observations":%d}`+"\n",
		b.N, nsBare, nsInstr, overheadPct, traceEvents, histograms, histObservations)
	if err := os.WriteFile("BENCH_obs.json", []byte(out), 0o644); err != nil {
		b.Fatalf("write BENCH_obs.json: %v", err)
	}
}

// BenchmarkCtlplaneAdmission pins the sharded ledger's throughput claim:
// open-loop admission churn (two-phase commit across range-partitioned
// link shards, each goroutine holding a ring of standing tenants) must
// sustain >= 1e5 decisions/sec. After the drain the ledger must verify
// with zero residue — the benchmark fails otherwise. The result is also
// emitted as BENCH_ctlplane.json so CI can track the trajectory across
// commits.
func BenchmarkCtlplaneAdmission(b *testing.B) {
	cl := topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
	sh := ctlplane.NewShardedLedger(cl.Graph, 4, 0, 1.0)
	// Pre-generated host pairs: the benchmark times the ledger, not the
	// RNG. Guarantees are small so headroom rejections stay rare.
	rng := mrand.New(mrand.NewSource(1))
	pairSets := make([][]placement.Pair, 1024)
	for i := range pairSets {
		for {
			s := cl.Hosts[rng.Intn(len(cl.Hosts))]
			d := cl.Hosts[rng.Intn(len(cl.Hosts))]
			if s != d {
				pairSets[i] = []placement.Pair{{Src: s, Dst: d}}
				break
			}
		}
	}
	var next int32
	var decisions int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var held []int32
		for pb.Next() {
			id := atomic.AddInt32(&next, 1)
			err := sh.Admit(id, 1e8, pairSets[int(id)%len(pairSets)])
			atomic.AddInt64(&decisions, 1)
			if err == nil {
				held = append(held, id)
			}
			if len(held) > 64 {
				sh.Release(held[0])
				atomic.AddInt64(&decisions, 1)
				held = held[1:]
			}
		}
		for _, id := range held {
			sh.Release(id)
			atomic.AddInt64(&decisions, 1)
		}
	})
	b.StopTimer()
	verifyOK := true
	if err := sh.Verify(); err != nil {
		verifyOK = false
		b.Errorf("post-drain verify: %v", err)
	}
	if n := sh.Tenants(); n != 0 {
		b.Errorf("%d tenants left after drain", n)
	}
	perSec := float64(decisions) / b.Elapsed().Seconds()
	nsPer := float64(b.Elapsed().Nanoseconds()) / float64(decisions)
	b.ReportMetric(perSec, "decisions/sec")
	b.ReportMetric(nsPer, "ns/decision")
	out := fmt.Sprintf(`{"benchmark":"ctlplane_admission","topology":"clos-32-host","shards":%d,"procs":%d,"decisions":%d,"decisions_per_sec":%.0f,"ns_per_decision":%.1f,"verify_ok":%v}`+"\n",
		sh.Shards(), runtime.GOMAXPROCS(0), decisions, perSec, nsPer, verifyOK)
	if err := os.WriteFile("BENCH_ctlplane.json", []byte(out), 0o644); err != nil {
		b.Fatalf("write BENCH_ctlplane.json: %v", err)
	}
}

// BenchmarkShardedEngine pins the sharded parallel-in-time core's
// speedup claim: an 8k-host FatTree carrying a cross-pod permutation of
// backlogged guaranteed flows is run once on the sequential engine and
// once on the sharded core with one worker per available CPU, and the
// wall-clock ratio is reported. The two runs produce bit-identical
// simulations (TestShardIdentity holds that gate), so the ratio is a
// pure scheduling-overhead/parallelism measurement. The result is also
// emitted as BENCH_shardsim.json — with the honest core count, since
// the >=3x target only applies at >=8 cores — so CI can track the
// trajectory across commits.
func BenchmarkShardedEngine(b *testing.B) {
	// Default scale finishes in CI minutes on a single core; set
	// UFAB_BENCH_FULL=1 on a real multicore box for the paper's 8192-host
	// fabric. The emitted JSON records whichever scale actually ran.
	clcfg := topo.ClosConfig{
		Pods: 8, ToRsPerPod: 8, AggsPerPod: 4, Cores: 16, HostsPerToR: 16,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	}
	horizon := 500 * sim.Microsecond
	if os.Getenv("UFAB_BENCH_FULL") != "" {
		clcfg = topo.ClosConfig{
			Pods: 16, ToRsPerPod: 16, AggsPerPod: 8, Cores: 64, HostsPerToR: 32,
			LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
		}
		horizon = sim.Millisecond
	}
	var hosts int
	run := func(shards int) (time.Duration, uint64) {
		cl := topo.NewClos(clcfg)
		hosts = len(cl.Hosts)
		f, err := vfabric.Build(vfabric.BuildOptions{
			Graph: cl.Graph, Cfg: vfabric.Config{Seed: 1}, Shards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Cross-pod permutation: every flow leaves its pod, so all traffic
		// crosses shard boundaries through the lookahead window.
		stride := hosts / 2
		for i, src := range cl.Hosts {
			vf := f.AddVF(int32(i+1), 1e9, 0)
			fl := f.AddFlow(vf, src, cl.Hosts[(i+stride)%hosts], 0)
			fl.Buffer.Add(1 << 40)
		}
		t0 := time.Now()
		f.Eng.RunUntil(horizon)
		elapsed := time.Since(t0)
		var events uint64
		if src, ok := f.Eng.(sim.StatsSource); ok {
			events = src.Stats().Processed
		}
		return elapsed, events
	}
	workers := runtime.GOMAXPROCS(0)
	var seq, par time.Duration
	var events uint64
	for i := 0; i < b.N; i++ {
		s, ev := run(0)
		p, _ := run(workers)
		seq += s
		par += p
		events = ev
	}
	seqNs := float64(seq.Nanoseconds()) / float64(b.N)
	parNs := float64(par.Nanoseconds()) / float64(b.N)
	speedup := seqNs / parNs
	b.ReportMetric(seqNs, "sequential_ns/op")
	b.ReportMetric(parNs, "sharded_ns/op")
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(float64(events)/(seqNs/1e9), "events/sec_seq")
	out := fmt.Sprintf(`{"benchmark":"sharded_engine","topology":"fattree-%d-host","hosts":%d,"logical_shards":%d,"workers":%d,"cores":%d,"events":%d,"sequential_ns_per_op":%.0f,"sharded_ns_per_op":%.0f,"speedup_x":%.2f}`+"\n",
		hosts, hosts, clcfg.Pods, workers, runtime.NumCPU(), events, seqNs, parNs, speedup)
	if err := os.WriteFile("BENCH_shardsim.json", []byte(out), 0o644); err != nil {
		b.Fatalf("write BENCH_shardsim.json: %v", err)
	}
}

// BenchmarkAdmission pins the subscription ledger's incremental-update
// claim: with a few hundred tenants standing on a 3-tier Clos, one
// admit+release round (O(affected links)) is timed against a
// from-scratch recomputation of the whole ledger (Verify — O(tenants ×
// paths)), and the speedup is reported. The result is also emitted as
// BENCH_placement.json so CI can track the trajectory across commits.
func BenchmarkAdmission(b *testing.B) {
	cl := topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
	rng := mrand.New(mrand.NewSource(1))
	pairsFor := func() []placement.Pair {
		n := 1 + rng.Intn(3)
		pairs := make([]placement.Pair, 0, n)
		for len(pairs) < n {
			s := cl.Hosts[rng.Intn(len(cl.Hosts))]
			d := cl.Hosts[rng.Intn(len(cl.Hosts))]
			if s != d {
				pairs = append(pairs, placement.Pair{Src: s, Dst: d})
			}
		}
		return pairs
	}
	const standing = 200
	l := placement.NewLedger(cl.Graph, 0)
	for id := int32(1); id <= standing; id++ {
		if err := l.Commit(id, 1e9, pairsFor()); err != nil {
			b.Fatal(err)
		}
	}
	churnPairs := pairsFor()

	var incr, full time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := l.Commit(standing+1, 1e9, churnPairs); err != nil {
			b.Fatal(err)
		}
		l.Release(standing + 1)
		incr += time.Since(t0)
		t1 := time.Now()
		if err := l.Verify(); err != nil {
			b.Fatal(err)
		}
		full += time.Since(t1)
	}
	nsIncr := float64(incr.Nanoseconds()) / float64(b.N)
	nsFull := float64(full.Nanoseconds()) / float64(b.N)
	speedup := nsFull / nsIncr
	b.ReportMetric(nsIncr, "incremental_ns/op")
	b.ReportMetric(nsFull, "recompute_ns/op")
	b.ReportMetric(speedup, "speedup_x")
	out := fmt.Sprintf(`{"benchmark":"admission_ledger","topology":"clos-32-host","standing_tenants":%d,"iterations":%d,"incremental_ns_per_op":%.0f,"recompute_ns_per_op":%.0f,"speedup_x":%.1f}`+"\n",
		standing, b.N, nsIncr, nsFull, speedup)
	if err := os.WriteFile("BENCH_placement.json", []byte(out), 0o644); err != nil {
		b.Fatalf("write BENCH_placement.json: %v", err)
	}
}
