// Multipath: Appendix F's token split as a runnable demo. In an
// oversubscribed fabric a single underlay path cannot carry a large
// pair's guarantee, so μFAB spreads the pair over several pinned paths and
// rebalances the per-path tokens (Algorithm 2) as demand shifts.
//
//	go run ./examples/multipath
package main

import (
	"fmt"

	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

// oversubscribedFabric builds 10G host edges over three 4G core paths: no
// single underlay path can carry the pair's 9G guarantee.
func oversubscribedFabric() (*topo.Graph, topo.NodeID, topo.NodeID) {
	g := &topo.Graph{}
	src := g.AddNode(topo.Host, topo.TierHost, "src")
	dst := g.AddNode(topo.Host, topo.TierHost, "dst")
	tor1 := g.AddNode(topo.Switch, topo.TierToR, "ToR1")
	tor2 := g.AddNode(topo.Switch, topo.TierToR, "ToR2")
	g.AddDuplexLink(src, tor1, topo.Gbps(12), 5*sim.Microsecond)
	g.AddDuplexLink(dst, tor2, topo.Gbps(12), 5*sim.Microsecond)
	for i := 0; i < 3; i++ {
		agg := g.AddNode(topo.Switch, topo.TierAgg, "Agg")
		g.AddDuplexLink(tor1, agg, topo.Gbps(4), 5*sim.Microsecond)
		g.AddDuplexLink(agg, tor2, topo.Gbps(4), 5*sim.Microsecond)
	}
	return g, src, dst
}

func main() {
	eng := sim.New()
	g, src, dst := oversubscribedFabric()
	f := vfabric.New(eng, g, vfabric.Config{Seed: 9})

	vf := f.AddVF(1, 9e9, 6) // a guarantee no single 4G core path can carry
	mf := f.AddMultiFlow(vf, src, dst, 3, 0)
	mf.SendAll(1 << 40)

	stop := f.StartSampling(200 * sim.Microsecond)
	fmt.Println("time   path tokens (Algorithm 2)        per-path delivered")
	for ms := 2; ms <= 10; ms += 2 {
		t := sim.Time(ms) * sim.Millisecond
		eng.RunUntil(t)
		f.SampleRates()
		fmt.Printf("%2d ms  ", ms)
		for _, fl := range mf.Subflows {
			fmt.Printf("φ=%5.1f ", fl.Pair.Phi())
		}
		fmt.Print("   ")
		for _, fl := range mf.Subflows {
			fmt.Printf("%5.1f MB ", float64(fl.Pair.Delivered)/1e6)
		}
		fmt.Println()
	}
	stop()
	fmt.Printf("\naggregate rate over the last 4 ms: %.2f Gbps (a single core path tops out at ~3.8)\n",
		mf.Rate(6*sim.Millisecond, 10*sim.Millisecond)/1e9)

	// Starve one path's demand: Algorithm 2 shifts its tokens to the
	// busy paths ("boost" keeps the idle path ready to ramp back).
	fmt.Println("\ndraining path 0's demand...")
	mf.Subflows[0].Buffer.Consume(mf.Subflows[0].Buffer.Pending())
	eng.RunUntil(14 * sim.Millisecond)
	f.SampleRates()
	for i, fl := range mf.Subflows {
		fmt.Printf("path %d: φ=%5.1f tokens\n", i, fl.Pair.Phi())
	}
	mf.Stop()
}
