// ECS: the compute scenario of §5.3 as a runnable demo. A
// latency-sensitive Memcached tenant and a bandwidth-hungry MongoDB tenant
// share the Fig-10 testbed; μFAB isolates them so Memcached's query
// completion times stay near the interference-free ideal.
//
//	go run ./examples/ecs
package main

import (
	"fmt"

	"ufab/internal/apps"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
	"ufab/internal/workload"
)

// fabricNet adapts vfabric to the application interface.
type fabricNet struct {
	f     *vfabric.Fabric
	conns map[[3]int64]*workload.Messages
}

func (n *fabricNet) Engine() sim.Scheduler { return n.f.Eng }

func (n *fabricNet) Dial(vf int32, tokens float64, src, dst topo.NodeID) *workload.Messages {
	k := [3]int64{int64(vf), int64(src), int64(dst)}
	if c := n.conns[k]; c != nil {
		return c
	}
	msgs := &workload.Messages{}
	n.f.AddFlowDemand(n.f.VFs[vf], src, dst, tokens, msgs)
	n.conns[k] = msgs
	return msgs
}

func run(withMongo bool) {
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	f := vfabric.New(eng, tb.Graph, vfabric.Config{Seed: 7})
	f.AddVF(1, 2e9, 3) // Memcached: 2G hose per vNIC
	f.AddVF(2, 6e9, 5) // MongoDB: 6G hose per vNIC
	net := &fabricNet{f: f, conns: map[[3]int64]*workload.Messages{}}

	mc := apps.NewMemcached(net, apps.MemcachedConfig{
		VF: 1, Tokens: 4,
		Clients: apps.PlaceVMs(tb.Servers[0:4], 12),
		Servers: apps.PlaceVMs(tb.Servers[6:8], 24),
		Period:  100 * sim.Microsecond,
		Seed:    7,
	})
	mc.Start()
	if withMongo {
		md := apps.NewMongo(net, apps.MongoConfig{
			VF: 2, Tokens: 8,
			Clients:     apps.PlaceVMs(tb.Servers[0:4], 24),
			Servers:     apps.PlaceVMs(tb.Servers[4:8], 24),
			Concurrency: 4,
			Seed:        8,
		})
		md.Start()
	}
	eng.RunUntil(50 * sim.Millisecond)
	label := "with MongoDB background"
	if !withMongo {
		label = "alone (ideal)          "
	}
	fmt.Printf("Memcached %s: QPS %7.0f | QCT avg %6.1f us, p90 %6.1f us, p99 %7.1f us\n",
		label, mc.QPS(eng.Now()), mc.QCT.Mean(), mc.QCT.P(0.9), mc.QCT.P(0.99))
}

func main() {
	fmt.Println("uFAB keeps the latency-sensitive tenant near its interference-free ideal:")
	run(false)
	run(true)
}
