// Incast: the Case-1 scenario of the paper (§2.2) as a runnable demo. N
// senders with equal guarantees burst at one receiver simultaneously;
// μFAB's two-stage traffic admission bounds the switch queue near 3·BDP
// and the tail RTT near 4 baseRTTs, while the guarantee-agnostic
// PicNIC′+WCC+Clove combination lets both grow with the incast degree.
//
//	go run ./examples/incast [-n 14]
package main

import (
	"flag"
	"fmt"

	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/vfabric"

	blhost "ufab/internal/baseline/host"
)

func main() {
	n := flag.Int("n", 14, "incast degree (senders)")
	flag.Parse()

	fmt.Printf("%d-to-1 incast, 10G links, 500 Mbps guarantees, synchronized start\n\n", *n)
	fmt.Printf("%-22s %10s %10s %12s %12s\n", "scheme", "p50 RTT", "max RTT", "max queue", "goodput")

	for _, scheme := range []string{"uFAB", "PicNIC'+WCC+Clove"} {
		eng := sim.New()
		star := topo.NewStar(*n+1, topo.Gbps(10), 5*sim.Microsecond)
		dst := star.Hosts[*n]

		var rtt stats.Samples
		var maxQ int
		var goodput float64
		dur := 20 * sim.Millisecond

		if scheme == "uFAB" {
			f := vfabric.New(eng, star.Graph, vfabric.Config{Seed: 1})
			var flows []*vfabric.Flow
			for i := 0; i < *n; i++ {
				vf := f.AddVF(int32(i+1), 500e6, 2)
				fl := f.AddFlow(vf, star.Hosts[i], dst, 0)
				fl.Buffer.Add(1 << 40)
				flows = append(flows, fl)
			}
			eng.RunUntil(dur)
			for _, fl := range flows {
				rtt.Add(fl.Pair.RTT.P(0.5))
				rtt.Add(fl.Pair.RTT.Max())
				goodput += float64(fl.Pair.Delivered*8) / dur.Seconds()
			}
			maxQ = f.MaxQueueBytes()
		} else {
			f := blhost.NewFabric(eng, star.Graph,
				blhost.Config{Scheme: blhost.PWC, Seed: 1}, dataplane.Config{})
			var flows []*blhost.FlowHandle
			for i := 0; i < *n; i++ {
				fh := f.AddFlow(int32(i+1), 5, star.Hosts[i], dst, 0)
				fh.Buffer.Add(1 << 40)
				flows = append(flows, fh)
			}
			eng.RunUntil(dur)
			for _, fh := range flows {
				rtt.Add(fh.Flow.RTT.P(0.5))
				rtt.Add(fh.Flow.RTT.Max())
				goodput += float64(fh.Flow.Delivered*8) / dur.Seconds()
			}
			maxQ = f.MaxQueueBytes()
		}

		fmt.Printf("%-22s %8.1fus %8.1fus %10dKB %9.2fGbps\n",
			scheme, rtt.Min(), rtt.Max(), maxQ/1024, goodput/1e9)
	}

	star := topo.NewStar(*n+1, topo.Gbps(10), 5*sim.Microsecond)
	base := star.Graph.Diameter(1500)
	bdp := 10e9 * base.Seconds() / 8
	fmt.Printf("\nreference: baseRTT %.1f us, 3·BDP = %.0f KB (uFAB's inflight bound, §3.4)\n",
		base.Micros(), 3*bdp/1024)
}
