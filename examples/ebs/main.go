// EBS: the storage scenario of §5.3 as a runnable demo. Storage Agents
// write 64 KB blocks to Block Agents, which replicate them 3-way to Chunk
// Servers while a Garbage Collector sweeps in the background; each task
// class is a μFAB tenant with its own guarantee (SA 2G, BA 6G, GC 1G),
// and every task finishes inside the paper's converted latency bound
// (2 ms average, 10 ms tail at 10G).
//
//	go run ./examples/ebs
package main

import (
	"fmt"

	"ufab/internal/apps"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
	"ufab/internal/workload"
)

type fabricNet struct {
	f     *vfabric.Fabric
	conns map[[3]int64]*workload.Messages
}

func (n *fabricNet) Engine() sim.Scheduler { return n.f.Eng }

func (n *fabricNet) Dial(vf int32, tokens float64, src, dst topo.NodeID) *workload.Messages {
	k := [3]int64{int64(vf), int64(src), int64(dst)}
	if c := n.conns[k]; c != nil {
		return c
	}
	msgs := &workload.Messages{}
	n.f.AddFlowDemand(n.f.VFs[vf], src, dst, tokens, msgs)
	n.conns[k] = msgs
	return msgs
}

func main() {
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	f := vfabric.New(eng, tb.Graph, vfabric.Config{Seed: 3})
	f.AddVF(101, 2e9, 3) // Storage Agents
	f.AddVF(102, 6e9, 5) // Block Agents (3-way replication)
	f.AddVF(103, 1e9, 2) // Garbage Collection
	net := &fabricNet{f: f, conns: map[[3]int64]*workload.Messages{}}

	ebs := apps.NewEBS(net, apps.EBSConfig{
		SAHosts:      tb.Servers[0:4],
		StorageHosts: tb.Servers[4:8],
		SATokens:     20, BATokens: 60, GCTokens: 10,
		GCPeriod: 2 * sim.Millisecond,
		Seed:     3,
	})
	ebs.Start()
	eng.RunUntil(60 * sim.Millisecond)

	fmt.Println("EBS task completion times under uFAB (bound: avg ≤ 2 ms, tail ≤ 10 ms):")
	fmt.Printf("  Storage Agent writes: %s\n", ebs.SATCT.Summary("ms"))
	fmt.Printf("  3-way replication:    %s\n", ebs.BATCT.Summary("ms"))
	fmt.Printf("  end-to-end store:     %s\n", ebs.TotalTCT.Summary("ms"))
	fmt.Printf("  GC sweeps:            %s\n", ebs.GCTCT.Summary("ms"))
	fmt.Printf("\nmax switch queue: %d KB — storage bursts never build deep queues\n",
		f.MaxQueueBytes()/1024)
}
