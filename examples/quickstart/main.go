// Quickstart: build a μFAB fabric over a small star topology, give two
// tenants hose-model bandwidth guarantees, and watch the allocation do all
// three things the paper promises at once — keep minimum guarantees, stay
// work-conserving, and bound the queues.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

func main() {
	// 1. A simulated network: 3 hosts around one switch, 10G links,
	//    ≈24 μs baseRTT (the paper's testbed figure).
	eng := sim.New()
	star := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)

	// 2. A μFAB deployment: μFAB-C on the switch, μFAB-E on each host.
	fabric := vfabric.New(eng, star.Graph, vfabric.Config{Seed: 42})

	// 3. Two tenants: gold bought 6 Gbps per vNIC, bronze 2 Gbps.
	gold := fabric.AddVF(1, 6e9, 5)
	bronze := fabric.AddVF(2, 2e9, 2)

	// 4. One VM-pair each, both sending to host 2 (a shared bottleneck).
	g := fabric.AddFlow(gold, star.Hosts[0], star.Hosts[2], 0)
	b := fabric.AddFlow(bronze, star.Hosts[1], star.Hosts[2], 0)

	// 5. Demands: bronze is always backlogged; gold pauses mid-run.
	b.Buffer.Add(1 << 40)
	g.Buffer.Add(1 << 40)
	eng.At(4*sim.Millisecond, func() {
		g.Buffer.Consume(g.Buffer.Pending()) // gold goes idle
	})
	eng.At(8*sim.Millisecond, func() {
		g.Buffer.Add(1 << 40) // gold returns and reclaims its guarantee
	})

	// 6. Run and report 1 ms snapshots.
	stop := fabric.StartSampling(100 * sim.Microsecond)
	fmt.Println("time    gold(6G guar)  bronze(2G guar)   note")
	for ms := 1; ms <= 12; ms++ {
		t := sim.Time(ms) * sim.Millisecond
		eng.RunUntil(t)
		fabric.SampleRates()
		note := ""
		switch ms {
		case 4:
			note = "← gold idles; bronze takes the slack (work conservation)"
		case 8:
			note = "← gold returns; guarantee reclaimed in well under 1 ms"
		}
		fmt.Printf("%2d ms   %6.2f Gbps   %6.2f Gbps     %s\n",
			ms,
			g.Rate(t-sim.Millisecond, t)/1e9,
			b.Rate(t-sim.Millisecond, t)/1e9,
			note)
	}
	stop()
	fmt.Printf("\nmax switch queue: %d KB (bounded — no deep buffers needed)\n",
		fabric.MaxQueueBytes()/1024)
	fmt.Printf("probing overhead: %.2f%% of bytes sent\n", fabric.ProbeOverhead()*100)
}
