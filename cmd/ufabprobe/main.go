// Command ufabprobe inspects μFAB's probe/response wire format
// (Appendix G): it decodes hex dumps into readable telemetry and encodes
// synthetic probes for testing.
//
//	ufabprobe decode 18000000010000...      # hex → fields
//	ufabprobe encode -phi 12.5 -window 65536 -hops 3
//	echo <hex> | ufabprobe decode -
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"ufab/internal/probe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "decode":
		decode(os.Args[2:])
	case "encode":
		encode(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ufabprobe decode <hex>|-        decode a probe from hex (or stdin with -)
  ufabprobe encode [flags]        build a probe and print its hex

encode flags:`)
	encodeFlags(flag.NewFlagSet("encode", flag.ContinueOnError)).PrintDefaults()
}

func decode(args []string) {
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	in := args[0]
	if in == "-" {
		sc := bufio.NewScanner(os.Stdin)
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(strings.TrimSpace(sc.Text()))
		}
		in = b.String()
	}
	buf, err := hex.DecodeString(strings.TrimSpace(in))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad hex: %v\n", err)
		os.Exit(1)
	}
	p, n, err := probe.Decode(buf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decode: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("kind       %s\n", p.Kind)
	fmt.Printf("vm-pair    %d\n", p.VMPair)
	fmt.Printf("path       %d\n", p.PathID)
	fmt.Printf("seq        %d\n", p.Seq)
	fmt.Printf("phi        %.3f tokens\n", p.Phi)
	fmt.Printf("window     %d bytes\n", p.Window)
	fmt.Printf("peer-phi   %.3f tokens\n", p.PeerPhi)
	fmt.Printf("sent-at    %d ps\n", p.SentAt)
	fmt.Printf("hops       %d (consumed %d of %d bytes; wire size %d with outer headers)\n",
		len(p.Hops), n, len(buf), p.Size())
	for i, h := range p.Hops {
		fmt.Printf("  hop %d: link=%d W=%dB Phi=%.1f tx=%.2fGbps q=%dB C=%.0fGbps\n",
			i, h.LinkID, h.TotalWindow, h.TotalTokens, h.TxRate/1e9, h.Queue, h.Capacity/1e9)
	}
}

type encodeOpts struct {
	kind    string
	vm      uint
	path    uint
	seq     uint
	phi     float64
	window  uint
	peerPhi float64
	hops    int
	tx      float64
	queue   uint
	cap_    float64
}

func encodeFlags(fs *flag.FlagSet) *flag.FlagSet {
	var o encodeOpts
	bind(fs, &o)
	return fs
}

func bind(fs *flag.FlagSet, o *encodeOpts) {
	fs.StringVar(&o.kind, "kind", "probe", "probe|response|finish|failure")
	fs.UintVar(&o.vm, "vm", 1, "VM-pair id")
	fs.UintVar(&o.path, "path", 0, "path id")
	fs.UintVar(&o.seq, "seq", 1, "sequence number")
	fs.Float64Var(&o.phi, "phi", 10, "bandwidth token (tokens)")
	fs.UintVar(&o.window, "window", 65536, "sending window (bytes)")
	fs.Float64Var(&o.peerPhi, "peer-phi", 0, "receiver-admitted token")
	fs.IntVar(&o.hops, "hops", 0, "synthetic INT hop records to attach")
	fs.Float64Var(&o.tx, "tx", 9.4e9, "per-hop TX rate (bits/s)")
	fs.UintVar(&o.queue, "queue", 0, "per-hop queue (bytes)")
	fs.Float64Var(&o.cap_, "cap", 10e9, "per-hop capacity (bits/s)")
}

func encode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	var o encodeOpts
	bind(fs, &o)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	kinds := map[string]probe.Kind{
		"probe": probe.KindProbe, "response": probe.KindResponse,
		"finish": probe.KindFinish, "failure": probe.KindFailure,
	}
	k, ok := kinds[o.kind]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", o.kind)
		os.Exit(2)
	}
	p := &probe.Packet{
		Kind: k, VMPair: uint32(o.vm), PathID: uint16(o.path), Seq: uint32(o.seq),
		Phi: o.phi, Window: uint32(o.window), PeerPhi: o.peerPhi,
	}
	for i := 0; i < o.hops; i++ {
		if err := p.AppendHop(probe.Hop{
			TotalWindow: uint32(o.window) * 4,
			TotalTokens: o.phi * 4,
			TxRate:      o.tx,
			Queue:       uint32(o.queue),
			Capacity:    o.cap_,
			LinkID:      int32(i),
		}); err != nil {
			fmt.Fprintf(os.Stderr, "hop %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	buf, err := p.Encode(nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "encode: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(hex.EncodeToString(buf))
}
