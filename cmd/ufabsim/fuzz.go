package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ufab/internal/fuzz"
)

// fuzzCmd is the scenario-fuzzer front end: replay one case, replay the
// committed regression corpus, and/or draw fresh seeded cases — every
// failure optionally shrunk to a minimal reproducer and written out for
// triage or corpus promotion.
func fuzzCmd(args []string) {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seeds := fs.Int("seeds", 50, "number of generated cases (0 = none, corpus/replay only)")
	seed0 := fs.Int64("seed0", 1, "first generator seed; cases use seeds seed0..seed0+seeds-1")
	budget := fs.Duration("budget", 0, "wall-clock budget; stop drawing new seeds once exceeded (0 = none)")
	shrink := fs.Bool("shrink", false, "minimize each failing case to a reproducer before reporting")
	out := fs.String("out", "", "directory for failing cases (case-<seed>.json) and shrunk reproducers (case-<seed>.min.json)")
	corpus := fs.String("corpus", "", "replay every *.json case in this directory first (the regression corpus)")
	replay := fs.String("replay", "", "replay a single case file and exit")
	noReplayCheck := fs.Bool("no-replay-check", false, "skip the double-run determinism check (halves the cost)")
	verbose := fs.Bool("v", false, "print a line per case, not only failures")
	fs.Parse(args)

	x := &fuzz.Executor{Replay: !*noReplayCheck}
	t0 := time.Now()

	if *replay != "" {
		c, err := fuzz.LoadFile(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r, err := x.Run(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %s\n", *replay, describe(r))
		if r.Verdict.Failed() {
			fmt.Print(r.FindingsJSONL)
			os.Exit(1)
		}
		return
	}

	failures := 0
	counts := map[fuzz.Verdict]int{}
	total := 0

	runCase := func(label string, c *fuzz.Case, seed int64, generated bool) {
		r, err := x.Run(c)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", label, err)
			return
		}
		total++
		counts[r.Verdict]++
		if !r.Verdict.Failed() {
			if *verbose {
				fmt.Printf("ok   %s: %s\n", label, describe(r))
			}
			return
		}
		failures++
		fmt.Printf("FAIL %s: %s\n", label, describe(r))
		if r.Panic != "" {
			fmt.Print(r.Panic)
		}
		fmt.Print(r.FindingsJSONL)
		if !generated {
			return
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*out, fmt.Sprintf("case-%d.json", seed))
			if err := c.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("     failing case written to %s\n", path)
		}
		if *shrink {
			sh := &fuzz.Shrinker{X: x}
			min, mr, st := sh.Shrink(c)
			fmt.Printf("     shrunk in %d runs (%d reductions): %s\n", st.Runs, st.Reductions, describe(mr))
			if *out != "" {
				path := filepath.Join(*out, fmt.Sprintf("case-%d.min.json", seed))
				if err := min.WriteFile(path); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("     reproducer written to %s (promote it into internal/fuzz/testdata/regressions/ with a fix)\n", path)
			}
		}
	}

	if *corpus != "" {
		files, err := filepath.Glob(filepath.Join(*corpus, "*.json"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sort.Strings(files)
		if len(files) == 0 {
			fmt.Fprintf(os.Stderr, "fuzz: no cases in corpus %s\n", *corpus)
			os.Exit(1)
		}
		for _, path := range files {
			c, err := fuzz.LoadFile(path)
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
				continue
			}
			runCase(path, c, 0, false)
		}
	}

	drawn := 0
	for i := 0; i < *seeds; i++ {
		if *budget > 0 && time.Since(t0) > *budget {
			fmt.Printf("fuzz: budget %v exhausted after %d/%d seeds\n", *budget, drawn, *seeds)
			break
		}
		seed := *seed0 + int64(i)
		drawn++
		runCase(fmt.Sprintf("seed %d", seed), fuzz.Generate(seed), seed, true)
	}

	fmt.Printf("fuzz: %d cases (%d clean, %d excused, %d findings, %d panics, %d mismatches) in %.1fs\n",
		total, counts[fuzz.VerdictClean], counts[fuzz.VerdictExcused], counts[fuzz.VerdictFinding],
		counts[fuzz.VerdictPanic], counts[fuzz.VerdictMismatch], time.Since(t0).Seconds())
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "fuzz: %d failure(s)\n", failures)
		os.Exit(1)
	}
}

// describe renders a result on one line.
func describe(r *fuzz.Result) string {
	s := fmt.Sprintf("%s (%d excused / %d unexcused, %d admitted / %d rejected)",
		r.Verdict, r.Excused, r.Unexcused, r.Admitted, r.Rejected)
	if len(r.Kinds) > 0 {
		s += fmt.Sprintf(" kinds=%v", r.Kinds)
	}
	if r.Mismatch != "" {
		s += " " + r.Mismatch
	}
	return s
}
