// Command ufabsim runs the μFAB paper-reproduction experiments and prints
// the rows/series each table and figure of the evaluation reports.
//
// Usage:
//
//	ufabsim list                 # list experiment ids
//	ufabsim run all              # run everything at full scale
//	ufabsim run fig11 fig12      # run selected experiments
//	ufabsim -quick run all       # scaled-down runs (the bench settings)
//	ufabsim -seed 7 run fig4     # change the deterministic seed
//	ufabsim -jobs 8 run all      # run up to 8 experiments in parallel
//	ufabsim -repeat 3 run fig4   # 3 runs with seeds seed, seed+1, seed+2
//	ufabsim tables               # just the resource-model tables
//	ufabsim -scenario f.json run chaoslab  # replay a fault scenario
//	ufabsim -telemetry -metrics m.json run all  # export registry snapshots
//	ufabsim trace fig15          # flight-recorder JSONL on stdout
//	ufabsim check                # replay evaluation vs golden_metrics.json
//	ufabsim check -update        # re-record the golden baseline
//	ufabsim check -telemetry     # replay with instrumentation attached
//
// Experiment runs are deterministic per (experiment, quick, seed), so a
// parallel batch produces Reports identical to a sequential one; only the
// wall-time annotations differ. Telemetry never feeds back into the
// simulation, so -telemetry does not change any result either.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"ufab/internal/chaos"
	"ufab/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments (bench scale)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csvDir := flag.String("csv", "", "directory to export figure curves as CSV")
	jobs := flag.Int("jobs", 0, "max concurrent experiment runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock timeout (0 = none)")
	repeat := flag.Int("repeat", 1, "runs per experiment, with seeds seed..seed+repeat-1")
	scenario := flag.String("scenario", "", "chaos scenario JSON file, replayed by the chaoslab experiment")
	telemetry := flag.Bool("telemetry", false, "attach the unified telemetry registry (link/agent instruments + flight recorder) to each run's fabric")
	metricsOut := flag.String("metrics", "", "write every run's registry snapshot as JSON to this file (implies -telemetry)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed,
		Telemetry: *telemetry || *metricsOut != ""}
	if *scenario != "" {
		b, err := os.ReadFile(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read scenario: %v\n", err)
			os.Exit(1)
		}
		if _, err := chaos.Parse(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Scenario = string(b)
	}
	runner := &experiments.Runner{Jobs: *jobs, Timeout: *timeout}
	exportCSV = *csvDir
	exportMetrics = *metricsOut
	switch args[0] {
	case "list":
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "tables":
		run(runner, opts, *repeat, "tab3", "tab4")
	case "run":
		ids := args[1:]
		if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
			ids = experiments.AllIDs()
		}
		run(runner, opts, *repeat, ids...)
	case "trace":
		trace(opts, args[1:])
	case "check":
		check(runner, args[1:], opts.Telemetry)
	default:
		usage()
		os.Exit(2)
	}
}

var (
	exportCSV     string
	exportMetrics string
)

// run executes the batch on the worker pool and prints reports in job
// order (streamed as each ordered prefix completes, via Runner's ordered
// results). A failed run is reported and the batch continues; the process
// exits non-zero if any run failed.
func run(runner *experiments.Runner, opts experiments.Options, repeat int, ids ...string) {
	jobs, err := experiments.ExpandIDs(ids, opts, repeat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (try 'ufabsim list')\n", err)
		os.Exit(1)
	}
	results := runner.Run(jobs)
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", res.Err)
			continue
		}
		rep := res.Report
		fmt.Print(rep.String())
		if exportCSV != "" && rep.SeriesCount() > 0 {
			if err := os.MkdirAll(exportCSV, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := rep.WriteCSV(exportCSV); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("-- %d curves exported to %s --\n", rep.SeriesCount(), exportCSV)
		}
		fmt.Printf("-- wall time %.1fs --\n\n", res.Wall.Seconds())
	}
	if exportMetrics != "" {
		if err := writeMetrics(exportMetrics, results, repeat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("-- registry snapshots written to %s --\n", exportMetrics)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d runs failed\n", failed, len(results))
		os.Exit(1)
	}
}

// writeMetrics dumps each run's full registry snapshot (headline metrics,
// fabric instruments, series) as one JSON object keyed by experiment id —
// "<id>@seed<seed>" when -repeat ran an id more than once. Key order is
// job order, so the file is byte-identical regardless of -jobs.
func writeMetrics(path string, results []experiments.RunResult, repeat int) error {
	var buf bytes.Buffer
	buf.WriteString("{\n")
	first := true
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		key := res.Job.Entry.ID
		if repeat > 1 {
			key = fmt.Sprintf("%s@seed%d", key, res.Job.Opts.Seed)
		}
		fmt.Fprintf(&buf, "%q: ", key)
		res.Report.Reg.Snapshot().WriteJSON(&buf)
	}
	buf.WriteString("\n}\n")
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// trace runs one experiment with the flight recorder enabled and streams
// the recorded events as JSONL on stdout; the report text goes to stderr
// so the two can be piped apart.
func trace(opts experiments.Options, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: ufabsim [flags] trace <experiment>")
		os.Exit(2)
	}
	e := experiments.Find(args[0])
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try 'ufabsim list')\n", args[0])
		os.Exit(1)
	}
	opts.Telemetry = true
	rep := e.Run(opts)
	fmt.Fprint(os.Stderr, rep.String())
	rec := rep.Reg.Recorder()
	if rec == nil {
		fmt.Fprintln(os.Stderr, "no flight recorder attached")
		os.Exit(1)
	}
	if n := rec.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "-- flight recorder: %d events (oldest %d dropped by the ring) --\n",
			rec.Total(), n)
	} else {
		fmt.Fprintf(os.Stderr, "-- flight recorder: %d events --\n", rec.Total())
	}
	if err := rec.WriteJSONL(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// check replays the whole evaluation at the golden file's pinned options
// and fails on metric drift. With -update it re-records the baseline.
// withTelemetry attaches the instrumentation during the replay — results
// must be identical either way, so CI runs check in both modes.
func check(runner *experiments.Runner, args []string, withTelemetry bool) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	golden := fs.String("golden", "golden_metrics.json", "golden metrics file")
	update := fs.Bool("update", false, "re-record the baseline instead of checking")
	tol := fs.Float64("tol", 1e-6, "default relative tolerance when recording with -update")
	telemetry := fs.Bool("telemetry", false, "attach the telemetry registry during the replay (results must not change)")
	fs.Parse(args)

	opts := experiments.Options{Quick: true, Seed: 1}
	var g *experiments.Golden
	if !*update {
		var err error
		g, err = experiments.LoadGolden(*golden)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load golden: %v (run 'ufabsim check -update' to record one)\n", err)
			os.Exit(1)
		}
		opts = g.Options
	}
	opts.Telemetry = withTelemetry || *telemetry

	t0 := time.Now()
	jobs, err := experiments.ExpandIDs(experiments.AllIDs(), opts, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	results := runner.Run(jobs)
	var reports []*experiments.Report
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", res.Err)
			os.Exit(1)
		}
		reports = append(reports, res.Report)
	}
	wall := time.Since(t0).Seconds()

	if exportMetrics != "" {
		if err := writeMetrics(exportMetrics, results, 1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *update {
		g := experiments.BuildGolden(opts, reports, *tol)
		// The baseline must never pin telemetry: check replays with the
		// recorded options, and both modes must reproduce it.
		g.Options.Telemetry = false
		if err := g.Save(*golden); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d experiments to %s in %.1fs\n", len(reports), *golden, wall)
		return
	}
	drifts := g.Compare(reports)
	if len(drifts) > 0 {
		fmt.Fprintf(os.Stderr, "metric drift vs %s (%d issues):\n", *golden, len(drifts))
		for _, d := range drifts {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	mode := "telemetry off"
	if opts.Telemetry {
		mode = "telemetry on"
	}
	fmt.Printf("check ok: %d experiments match %s in %.1fs (%s)\n", len(reports), *golden, wall, mode)
}

func usage() {
	fmt.Fprintf(os.Stderr, `ufabsim — uFAB (SIGCOMM'22) reproduction harness

usage:
  ufabsim [flags] list
  ufabsim [flags] run all | <id>...
  ufabsim [flags] tables
  ufabsim [flags] trace <id>
  ufabsim [flags] check [-golden file] [-update] [-tol t] [-telemetry]

flags:
`)
	flag.PrintDefaults()
}
