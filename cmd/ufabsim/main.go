// Command ufabsim runs the μFAB paper-reproduction experiments and prints
// the rows/series each table and figure of the evaluation reports.
//
// Usage:
//
//	ufabsim list                 # list experiment ids
//	ufabsim run all              # run everything at full scale
//	ufabsim run fig11 fig12      # run selected experiments
//	ufabsim -quick run all       # scaled-down runs (the bench settings)
//	ufabsim -seed 7 run fig4     # change the deterministic seed
//	ufabsim tables               # just the resource-model tables
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ufab/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments (bench scale)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csvDir := flag.String("csv", "", "directory to export figure curves as CSV")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	exportCSV = *csvDir
	switch args[0] {
	case "list":
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "tables":
		run(opts, "tab3", "tab4")
	case "run":
		ids := args[1:]
		if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
			ids = nil
			for _, e := range experiments.All {
				ids = append(ids, e.ID)
			}
		}
		run(opts, ids...)
	default:
		usage()
		os.Exit(2)
	}
}

var exportCSV string

func run(opts experiments.Options, ids ...string) {
	for _, id := range ids {
		e := experiments.Find(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try 'ufabsim list')\n", id)
			os.Exit(1)
		}
		t0 := time.Now()
		rep := e.Run(opts)
		fmt.Print(rep.String())
		if exportCSV != "" && len(rep.Series) > 0 {
			if err := os.MkdirAll(exportCSV, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := rep.WriteCSV(exportCSV); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("-- %d curves exported to %s --\n", len(rep.Series), exportCSV)
		}
		fmt.Printf("-- wall time %.1fs --\n\n", time.Since(t0).Seconds())
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `ufabsim — uFAB (SIGCOMM'22) reproduction harness

usage:
  ufabsim [flags] list
  ufabsim [flags] run all | <id>...
  ufabsim [flags] tables

flags:
`)
	flag.PrintDefaults()
}
