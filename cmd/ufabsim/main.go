// Command ufabsim runs the μFAB paper-reproduction experiments and prints
// the rows/series each table and figure of the evaluation reports.
//
// Usage:
//
//	ufabsim list                 # list experiment ids
//	ufabsim run all              # run everything at full scale
//	ufabsim run fig11 fig12      # run selected experiments
//	ufabsim -quick run all       # scaled-down runs (the bench settings)
//	ufabsim -seed 7 run fig4     # change the deterministic seed
//	ufabsim -jobs 8 run all      # run up to 8 experiments in parallel
//	ufabsim -repeat 3 run fig4   # 3 runs with seeds seed, seed+1, seed+2
//	ufabsim tables               # just the resource-model tables
//	ufabsim -scenario f.json run chaoslab  # replay a fault scenario
//	ufabsim -telemetry -metrics m.json run all  # export registry snapshots
//	ufabsim trace fig15          # flight-recorder JSONL on stdout
//	ufabsim trace -strict fig15  # fail if the recorder ring dropped events
//	ufabsim trace -format perfetto chaoslab  # Chrome trace-event JSON (Perfetto UI)
//	ufabsim -audit run fig15     # attach the predictability auditor
//	ufabsim audit all            # audited replay; fail on unexcused findings
//	ufabsim -findings f.jsonl audit all  # export findings as JSONL
//	ufabsim fuzz -seeds 50       # scenario fuzzing with the auditor as oracle
//	ufabsim fuzz -seeds 200 -shrink -out failures  # minimize + save failures
//	ufabsim fuzz -seeds 0 -corpus internal/fuzz/testdata/regressions  # corpus replay
//	ufabsim fuzz -replay case.json  # re-run one saved case
//	ufabsim serve -store /var/lib/ufab  # always-on control-plane daemon
//	ufabsim serve -churn -addr :7663    # with an open-loop background workload
//	ufabsim ctl status           # query a running daemon (see 'ufabsim ctl')
//	ufabsim check                # replay evaluation vs golden_metrics.json
//	ufabsim check -update        # re-record the golden baseline
//	ufabsim check -telemetry     # replay with instrumentation attached
//	ufabsim check -audit         # replay audited; findings must be clean
//
// Experiment runs are deterministic per (experiment, quick, seed), so a
// parallel batch produces Reports identical to a sequential one; only the
// wall-time annotations differ. Telemetry never feeds back into the
// simulation, so -telemetry does not change any result either; the same
// holds for the auditor (-audit), which is a pure observer of the
// telemetry stream.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"ufab/internal/chaos"
	"ufab/internal/experiments"
	"ufab/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments (bench scale)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	csvDir := flag.String("csv", "", "directory to export figure curves as CSV")
	jobs := flag.Int("jobs", 0, "max concurrent experiment runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock timeout (0 = none)")
	repeat := flag.Int("repeat", 1, "runs per experiment, with seeds seed..seed+repeat-1")
	scenario := flag.String("scenario", "", "chaos scenario JSON file, replayed by the chaoslab experiment")
	telemetry := flag.Bool("telemetry", false, "attach the unified telemetry registry (link/agent instruments + flight recorder) to each run's fabric")
	metricsOut := flag.String("metrics", "", "write every run's registry snapshot as JSON to this file (implies -telemetry)")
	shards := flag.Int("shards", 0, "parallel simulation workers per run: 0 = sequential engine, N >= 1 = sharded parallel-in-time core with N workers (results are bit-identical across values)")
	auditFlag := flag.Bool("audit", false, "attach the online predictability auditor to each run's fabric (implies -telemetry for it)")
	findingsOut := flag.String("findings", "", "write every run's audit findings as JSONL to this file (implies -audit)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Shards: *shards,
		Telemetry: *telemetry || *metricsOut != "",
		Audit:     *auditFlag || *findingsOut != ""}
	if *scenario != "" {
		b, err := os.ReadFile(*scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read scenario: %v\n", err)
			os.Exit(1)
		}
		if _, err := chaos.Parse(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Scenario = string(b)
	}
	runner := &experiments.Runner{Jobs: *jobs, Timeout: *timeout}
	exportCSV = *csvDir
	exportMetrics = *metricsOut
	exportFindings = *findingsOut
	switch args[0] {
	case "list":
		for _, e := range experiments.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "tables":
		run(runner, opts, *repeat, "tab3", "tab4")
	case "run":
		ids := args[1:]
		if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
			ids = experiments.AllIDs()
		}
		run(runner, opts, *repeat, ids...)
	case "trace":
		trace(opts, args[1:])
	case "audit":
		auditCmd(runner, opts, *repeat, args[1:])
	case "check":
		check(runner, args[1:], opts)
	case "fuzz":
		fuzzCmd(args[1:])
	case "serve":
		serveCmd(args[1:])
	case "ctl":
		ctlCmd(args[1:])
	default:
		usage()
		os.Exit(2)
	}
}

var (
	exportCSV      string
	exportMetrics  string
	exportFindings string
)

// run executes the batch on the worker pool and prints reports in job
// order (streamed as each ordered prefix completes, via Runner's ordered
// results). A failed run is reported and the batch continues; the process
// exits non-zero if any run failed.
func run(runner *experiments.Runner, opts experiments.Options, repeat int, ids ...string) {
	jobs, err := experiments.ExpandIDs(ids, opts, repeat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (try 'ufabsim list')\n", err)
		os.Exit(1)
	}
	results := runner.Run(jobs)
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", res.Err)
			continue
		}
		rep := res.Report
		fmt.Print(rep.String())
		if exportCSV != "" && rep.SeriesCount() > 0 {
			if err := os.MkdirAll(exportCSV, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := rep.WriteCSV(exportCSV); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("-- %d curves exported to %s --\n", rep.SeriesCount(), exportCSV)
		}
		if rep.Findings != nil {
			fmt.Printf("-- audit: %d excused / %d unexcused finding(s) --\n",
				rep.Findings.Excused(), rep.Findings.Unexcused())
		}
		fmt.Printf("-- wall time %.1fs --\n\n", res.Wall.Seconds())
	}
	if exportMetrics != "" {
		if err := writeMetrics(exportMetrics, results, repeat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("-- registry snapshots written to %s --\n", exportMetrics)
	}
	if exportFindings != "" {
		if err := writeFindings(exportFindings, results, repeat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("-- audit findings written to %s --\n", exportFindings)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d runs failed\n", failed, len(results))
		os.Exit(1)
	}
}

// writeFindings exports every run's audit findings as JSONL, one finding
// per line with the experiment id prepended as the first field, so a
// batch's findings remain attributable and the file is jq-friendly. Line
// order is job order, so the file is byte-identical regardless of -jobs.
func writeFindings(path string, results []experiments.RunResult, repeat int) error {
	var buf bytes.Buffer
	for _, res := range results {
		if res.Err != nil || res.Report.Findings == nil {
			continue
		}
		key := res.Job.Entry.ID
		if repeat > 1 {
			key = fmt.Sprintf("%s@seed%d", key, res.Job.Opts.Seed)
		}
		var runBuf bytes.Buffer
		if err := res.Report.Findings.WriteJSONL(&runBuf); err != nil {
			return err
		}
		for _, line := range bytes.SplitAfter(runBuf.Bytes(), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			// Each finding line is `{"kind":...}`; splice the experiment id
			// in as the leading field.
			fmt.Fprintf(&buf, "{\"experiment\":%q,", key)
			buf.Write(line[1:])
		}
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// auditCmd replays experiments with the predictability auditor attached
// and fails when any run has unexcused findings, drops findings, or
// produces fewer excused findings than its chaos scenario declares. It is
// the CLI face of the standing audit gate.
func auditCmd(runner *experiments.Runner, opts experiments.Options, repeat int, ids []string) {
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = experiments.AllIDs()
	}
	opts.Audit = true
	jobs, err := experiments.ExpandIDs(ids, opts, repeat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (try 'ufabsim list')\n", err)
		os.Exit(1)
	}
	t0 := time.Now()
	results := runner.Run(jobs)
	bad := 0
	audited := 0
	for _, res := range results {
		if res.Err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", res.Err)
			continue
		}
		rep := res.Report
		if rep.Findings == nil {
			fmt.Printf("%-8s no fabric under audit\n", rep.ID)
			continue
		}
		audited++
		excused, unexcused := rep.Findings.Excused(), rep.Findings.Unexcused()
		verdict := "clean"
		if unexcused > 0 {
			verdict = "VIOLATIONS"
		}
		fmt.Printf("%-8s %s: %d excused / %d unexcused finding(s)\n", rep.ID, verdict, excused, unexcused)
		for _, f := range rep.Findings.Findings() {
			if !f.Excused {
				fmt.Printf("  %s %s [%d ps, %d ps] observed %g vs bound %g %s\n",
					f.Kind, f.Entity, f.FromPS, f.ToPS, f.Observed, f.Bound, f.Unit)
			}
		}
		if unexcused > 0 {
			bad++
		}
		if d := rep.Findings.Dropped(); d > 0 {
			bad++
			fmt.Fprintf(os.Stderr, "%s: findings log dropped %d finding(s)\n", rep.ID, d)
		}
		if min := rep.Findings.ExpectExcusedMin; excused < min {
			bad++
			fmt.Fprintf(os.Stderr, "%s: %d excused finding(s), scenario declares >= %d — injected faults not observed\n",
				rep.ID, excused, min)
		}
	}
	if exportFindings != "" {
		if err := writeFindings(exportFindings, results, repeat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("-- audit findings written to %s --\n", exportFindings)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "audit: %d problem(s) across %d runs\n", bad, len(results))
		os.Exit(1)
	}
	fmt.Printf("audit ok: %d audited runs clean in %.1fs\n", audited, time.Since(t0).Seconds())
}

// writeMetrics dumps each run's full registry snapshot (headline metrics,
// fabric instruments, series) as one JSON object keyed by experiment id —
// "<id>@seed<seed>" when -repeat ran an id more than once. Key order is
// job order, so the file is byte-identical regardless of -jobs.
func writeMetrics(path string, results []experiments.RunResult, repeat int) error {
	var buf bytes.Buffer
	buf.WriteString("{\n")
	first := true
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		key := res.Job.Entry.ID
		if repeat > 1 {
			key = fmt.Sprintf("%s@seed%d", key, res.Job.Opts.Seed)
		}
		fmt.Fprintf(&buf, "%q: ", key)
		res.Report.Reg.Snapshot().WriteJSON(&buf)
	}
	buf.WriteString("\n}\n")
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// trace runs one experiment with the flight recorder enabled and streams
// the recorded events as JSONL on stdout; the report text goes to stderr
// so the two can be piped apart.
func trace(opts experiments.Options, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	strict := fs.Bool("strict", false, "exit non-zero when the flight-recorder ring dropped events (the exported trace is incomplete)")
	format := fs.String("format", "jsonl", "trace output format: jsonl (one event per line) or perfetto (Chrome trace-event JSON, loadable in Perfetto/chrome://tracing)")
	fs.Parse(args)
	args = fs.Args()
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: ufabsim [flags] trace [-strict] [-format jsonl|perfetto] <experiment>")
		os.Exit(2)
	}
	if *format != "jsonl" && *format != "perfetto" {
		fmt.Fprintf(os.Stderr, "unknown trace format %q (want jsonl or perfetto)\n", *format)
		os.Exit(2)
	}
	e := experiments.Find(args[0])
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try 'ufabsim list')\n", args[0])
		os.Exit(1)
	}
	opts.Telemetry = true
	rep := e.Run(opts)
	fmt.Fprint(os.Stderr, rep.String())
	if rep.Reg.Recorder() == nil {
		fmt.Fprintln(os.Stderr, "no flight recorder attached")
		os.Exit(1)
	}
	// Totals and the exported stream span every recorder of the run — the
	// base ring plus, under -shards, one ring per logical shard — merged
	// into one canonical order.
	total, dropped := rep.Reg.TraceTotals()
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "-- flight recorder: %d events (oldest %d dropped by the rings) --\n",
			total, dropped)
		fmt.Fprintf(os.Stderr, "warning: the trace below is missing its oldest %d events — a ring wrapped; re-run with a larger recorder capacity or a shorter horizon for a complete trace\n",
			dropped)
	} else {
		fmt.Fprintf(os.Stderr, "-- flight recorder: %d events --\n", total)
	}
	// One summary line per histogram, so the latency shape of the run is
	// visible next to the trace without opening the snapshot.
	for _, h := range rep.Reg.Snapshot().Histograms {
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "   %-40s n=%-7d p50=%.4g p99=%.4g max=%.4g\n",
			h.Name, h.Count, stats.BucketQuantile(h, 0.5), stats.BucketQuantile(h, 0.99), h.Max)
	}
	var err error
	if *format == "perfetto" {
		err = rep.Reg.WritePerfettoJSON(os.Stdout)
	} else {
		err = rep.Reg.WriteTraceJSONL(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *strict && dropped > 0 {
		os.Exit(1)
	}
}

// check replays the whole evaluation at the golden file's pinned options
// and fails on metric drift. With -update it re-records the baseline.
// Telemetry, auditing and the sharded core must all reproduce the same
// numbers, so CI runs check in every mode against one golden file.
func check(runner *experiments.Runner, args []string, cli experiments.Options) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	golden := fs.String("golden", "golden_metrics.json", "golden metrics file")
	update := fs.Bool("update", false, "re-record the baseline instead of checking")
	tol := fs.Float64("tol", 1e-6, "default relative tolerance when recording with -update")
	telemetry := fs.Bool("telemetry", false, "attach the telemetry registry during the replay (results must not change)")
	auditFlag := fs.Bool("audit", false, "attach the predictability auditor during the replay (results must not change, findings must be clean)")
	shards := fs.Int("shards", -1, "replay on the sharded parallel-in-time core with N workers (results must not change); -1 inherits the top-level -shards")
	fs.Parse(args)

	opts := experiments.Options{Quick: true, Seed: 1}
	var g *experiments.Golden
	if !*update {
		var err error
		g, err = experiments.LoadGolden(*golden)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load golden: %v (run 'ufabsim check -update' to record one)\n", err)
			os.Exit(1)
		}
		opts = g.Options
	}
	opts.Telemetry = cli.Telemetry || *telemetry
	opts.Audit = cli.Audit || *auditFlag
	opts.Shards = cli.Shards
	if *shards >= 0 {
		opts.Shards = *shards
	}

	t0 := time.Now()
	jobs, err := experiments.ExpandIDs(experiments.AllIDs(), opts, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	results := runner.Run(jobs)
	var reports []*experiments.Report
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", res.Err)
			os.Exit(1)
		}
		reports = append(reports, res.Report)
	}
	wall := time.Since(t0).Seconds()

	if exportMetrics != "" {
		if err := writeMetrics(exportMetrics, results, 1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *update {
		g := experiments.BuildGolden(opts, reports, *tol)
		// The baseline must never pin telemetry, auditing or an execution
		// mode: check replays with the recorded options, and every mode
		// must reproduce it.
		g.Options.Telemetry = false
		g.Options.Audit = false
		g.Options.Shards = 0
		if err := g.Save(*golden); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d experiments to %s in %.1fs\n", len(reports), *golden, wall)
		return
	}
	drifts := g.Compare(reports)
	if len(drifts) > 0 {
		fmt.Fprintf(os.Stderr, "metric drift vs %s (%d issues):\n", *golden, len(drifts))
		for _, d := range drifts {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	if opts.Audit {
		bad := 0
		for _, rep := range reports {
			if rep.Findings == nil {
				continue
			}
			if n := rep.Findings.Unexcused(); n > 0 {
				bad++
				fmt.Fprintf(os.Stderr, "%s: %d unexcused audit finding(s)\n", rep.ID, n)
			}
			if min := rep.Findings.ExpectExcusedMin; rep.Findings.Excused() < min {
				bad++
				fmt.Fprintf(os.Stderr, "%s: %d excused finding(s), scenario declares >= %d\n",
					rep.ID, rep.Findings.Excused(), min)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
	}
	mode := "telemetry off"
	if opts.Telemetry {
		mode = "telemetry on"
	}
	if opts.Audit {
		mode += ", audited"
	}
	if opts.Shards > 0 {
		mode += fmt.Sprintf(", sharded x%d", opts.Shards)
	}
	fmt.Printf("check ok: %d experiments match %s in %.1fs (%s)\n", len(reports), *golden, wall, mode)
}

func usage() {
	fmt.Fprintf(os.Stderr, `ufabsim — uFAB (SIGCOMM'22) reproduction harness

usage:
  ufabsim [flags] list
  ufabsim [flags] run all | <id>...
  ufabsim [flags] tables
  ufabsim [flags] trace [-strict] [-format jsonl|perfetto] <id>
  ufabsim [flags] audit all | <id>...
  ufabsim [flags] check [-golden file] [-update] [-tol t] [-telemetry] [-audit]
  ufabsim fuzz [-seeds n] [-seed0 s] [-budget d] [-shrink] [-out dir] [-corpus dir] [-replay file]
  ufabsim serve [-addr a] [-store dir] [-seed s] [-churn] [-policy p] [-shards n] [-oversub f]
  ufabsim ctl [-addr a] <verb> [args]   (ufabsim ctl -h for verbs)

flags:
`)
	flag.PrintDefaults()
}
