package main

// The control-plane subcommands: `ufabsim serve` runs the always-on
// daemon (simulated fabric + reconciler + northbound HTTP API), and
// `ufabsim ctl` is the thin client that talks to it. The client does no
// formatting beyond passing the daemon's JSON through — it exists so the
// smoke tests and operators need nothing beyond the one binary.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"ufab/internal/ctlplane"
)

// serveCmd runs the control-plane daemon in the foreground until
// SIGINT/SIGTERM, then snapshots the store and exits cleanly.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7663", "northbound listen address")
	store := fs.String("store", "", "state directory for the WAL + snapshot (empty = in-memory only)")
	seed := fs.Int64("seed", 1, "deterministic seed for the fabric and churn workload")
	churn := fs.Bool("churn", false, "run an open-loop background tenant workload")
	policy := fs.String("policy", "spread", "placement policy (firstfit | spread | subaware)")
	shards := fs.Int("shards", 0, "ledger shard count (0 = default)")
	oversub := fs.Float64("oversub", 1.0, "admission oversubscription factor")
	slots := fs.Int("slots", 4, "VM slots per host")
	fs.Parse(args)

	d, err := ctlplane.NewDaemon(ctlplane.DaemonConfig{
		Addr:             *addr,
		StoreDir:         *store,
		Seed:             *seed,
		Churn:            *churn,
		Policy:           *policy,
		Shards:           *shards,
		Oversubscription: *oversub,
		SlotsPerHost:     *slots,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ctlplane: shutting down")
		d.Stop()
	}()

	ready := make(chan string, 1)
	go func() {
		bound := <-ready
		fmt.Fprintf(os.Stderr, "ctlplane: serving on http://%s (store=%q churn=%v policy=%s)\n",
			bound, *store, *churn, *policy)
	}()
	if err := d.ListenAndServe(ready); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// ctlCmd dispatches one client verb against a running daemon.
func ctlCmd(args []string) {
	fs := flag.NewFlagSet("ctl", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7663", "daemon address")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: ufabsim ctl [-addr host:port] <verb> [args]

verbs:
  status                          control-plane summary (tenants, stats, store seq)
  admit -id n -g bps [-vms k] [-class w] [-backlog b]
                                  admit a tenant (persisted, reconciled)
  evaluate -id n -g bps [-vms k]  what-if placement without committing
  release <id>                    release a tenant
  tenants                         list desired tenant records
  tenant <id>                     one tenant record
  fleet                           per-host slot usage and cordons
  ledger                          shard/subscription summary + Verify()
  drain <host>                    cordon a host and evacuate its tenants
  uncordon <host>                 reopen a drained host
  findings [-follow]              audit findings as JSONL (streamed with -follow)
  metrics                         telemetry registry snapshot
`)
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	base := "http://" + *addr
	verb, rest := rest[0], rest[1:]
	switch verb {
	case "status", "tenants", "fleet", "ledger", "metrics":
		ctlGet(base + "/v1/" + verb)
	case "tenant":
		if len(rest) != 1 {
			fatalf("usage: ufabsim ctl tenant <id>")
		}
		ctlGet(base + "/v1/tenants/" + rest[0])
	case "admit", "evaluate":
		af := flag.NewFlagSet("ctl "+verb, flag.ExitOnError)
		id := af.Int("id", 0, "tenant id")
		g := af.Float64("g", 1e9, "bandwidth guarantee (bps)")
		vms := af.Int("vms", 2, "VM count")
		class := af.Int("class", 3, "weight class")
		backlog := af.Int64("backlog", 0, "per-pair backlog bytes")
		af.Parse(rest)
		if *id <= 0 {
			fatalf("ctl %s: -id must be positive", verb)
		}
		ctlPost(base+"/v1/"+verb, map[string]any{
			"id": *id, "guarantee_bps": *g, "vms": *vms,
			"weight_class": *class, "backlog_bytes": *backlog,
		})
	case "release":
		if len(rest) != 1 {
			fatalf("usage: ufabsim ctl release <id>")
		}
		ctlPost(base+"/v1/release", map[string]any{"id": atoiOrDie(rest[0])})
	case "drain", "uncordon":
		if len(rest) != 1 {
			fatalf("usage: ufabsim ctl %s <host>", verb)
		}
		ctlPost(base+"/v1/"+verb, map[string]any{"host": atoiOrDie(rest[0])})
	case "findings":
		url := base + "/v1/findings"
		if len(rest) == 1 && rest[0] == "-follow" {
			url += "?follow=1"
		} else if len(rest) != 0 {
			fatalf("usage: ufabsim ctl findings [-follow]")
		}
		ctlGet(url)
	default:
		fs.Usage()
		os.Exit(2)
	}
}

func atoiOrDie(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		fatalf("not a number: %q", s)
	}
	return n
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// ctlGet streams the response body to stdout (it is already JSON/JSONL);
// non-2xx responses go to stderr and exit non-zero.
func ctlGet(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	ctlDump(resp)
}

func ctlPost(url string, body any) {
	b, err := json.Marshal(body)
	if err != nil {
		fatalf("%v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	ctlDump(resp)
}

func ctlDump(resp *http.Response) {
	if resp.StatusCode/100 != 2 {
		io.Copy(os.Stderr, resp.Body)
		fmt.Fprintf(os.Stderr, "HTTP %d\n", resp.StatusCode)
		os.Exit(1)
	}
	io.Copy(os.Stdout, resp.Body)
}
