// Command ufabtopo inspects the repository's topology builders: it prints
// node/link inventories, enumerates equal-cost paths between hosts, and
// exports Graphviz DOT for visualization.
//
//	ufabtopo testbed                  # summary of the Fig-10 testbed
//	ufabtopo fattree -k 4 -dot        # DOT on stdout
//	ufabtopo clos -cores 16 -paths 0 7
package main

import (
	"flag"
	"fmt"
	"os"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
	k := fs.Int("k", 4, "fat-tree arity (fattree)")
	cores := fs.Int("cores", 16, "core switches (clos)")
	aggs := fs.Int("aggs", 3, "aggregation switches (twotier)")
	hosts := fs.Int("hosts", 4, "hosts per side/ToR (twotier, star)")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	var pathPair [2]int
	fs.IntVar(&pathPair[0], "src", -1, "host index: enumerate paths from")
	fs.IntVar(&pathPair[1], "dst", -1, "host index: enumerate paths to")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	var g *topo.Graph
	switch os.Args[1] {
	case "testbed":
		g = topo.NewTestbed(topo.TestbedConfig{}).Graph
	case "fattree":
		g = topo.FatTree(*k, topo.Gbps(10), sim.Microsecond).Graph
	case "clos":
		g = topo.NewClos(topo.Paper512(*cores)).Graph
	case "twotier":
		g = topo.NewTwoTier(*aggs, *hosts, topo.Gbps(10), sim.Microsecond).Graph
	case "star":
		g = topo.NewStar(*hosts, topo.Gbps(10), sim.Microsecond).Graph
	default:
		usage()
		os.Exit(2)
	}

	if *dot {
		emitDOT(g)
		return
	}
	summarize(g)
	if pathPair[0] >= 0 && pathPair[1] >= 0 {
		listPaths(g, pathPair[0], pathPair[1])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ufabtopo <testbed|fattree|clos|twotier|star> [flags]
flags: -k N | -cores N | -aggs N | -hosts N | -dot | -src I -dst J`)
}

func summarize(g *topo.Graph) {
	hosts, switches := 0, 0
	for _, n := range g.Nodes {
		if n.Kind == topo.Host {
			hosts++
		} else {
			switches++
		}
	}
	fmt.Printf("nodes: %d hosts, %d switches; links: %d (duplex pairs: %d)\n",
		hosts, switches, len(g.Links), len(g.Links)/2)
	if err := g.Validate(); err != nil {
		fmt.Printf("VALIDATE FAILED: %v\n", err)
		return
	}
	hs := g.Hosts()
	if len(hs) >= 2 {
		p := g.Paths(hs[0], hs[len(hs)-1], 0)
		fmt.Printf("equal-cost paths %s→%s: %d (length %d links)\n",
			g.Node(hs[0]).Name, g.Node(hs[len(hs)-1]).Name, len(p), pathLen(p))
		fmt.Printf("diameter baseRTT (1500B MTU): %v\n", g.Diameter(1500))
	}
}

func pathLen(p []topo.Path) int {
	if len(p) == 0 {
		return 0
	}
	return len(p[0])
}

func listPaths(g *topo.Graph, srcIdx, dstIdx int) {
	hs := g.Hosts()
	if srcIdx >= len(hs) || dstIdx >= len(hs) {
		fmt.Fprintf(os.Stderr, "host index out of range (have %d hosts)\n", len(hs))
		os.Exit(1)
	}
	src, dst := hs[srcIdx], hs[dstIdx]
	paths := g.Paths(src, dst, 0)
	fmt.Printf("%d equal-cost paths %s → %s:\n", len(paths), g.Node(src).Name, g.Node(dst).Name)
	for i, p := range paths {
		fmt.Printf("  [%d]", i)
		fmt.Printf(" %s", g.Node(g.PathSrc(p)).Name)
		for _, lid := range p {
			fmt.Printf(" → %s", g.Node(g.Link(lid).Dst).Name)
		}
		fmt.Printf("   (baseRTT %v)\n", g.BaseRTT(p, 1500))
	}
}

func emitDOT(g *topo.Graph) {
	fmt.Println("graph fabric {")
	fmt.Println("  rankdir=BT;")
	for _, n := range g.Nodes {
		shape := "box"
		if n.Kind == topo.Host {
			shape = "ellipse"
		}
		fmt.Printf("  n%d [label=%q shape=%s];\n", n.ID, n.Name, shape)
	}
	for _, l := range g.Links {
		if l.ID < l.Reverse { // one edge per duplex pair
			fmt.Printf("  n%d -- n%d [label=\"%.0fG\"];\n", l.Src, l.Dst, l.Capacity/1e9)
		}
	}
	fmt.Println("}")
}
