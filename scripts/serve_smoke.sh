#!/usr/bin/env bash
# Control-plane smoke gate: build the binary, start the daemon with a
# persistent store and background churn, drive the northbound API end to
# end, kill the daemon mid-churn (SIGKILL — no orderly snapshot), restart
# it on the same store, and assert the desired set and ledger recovered.
# CI runs this via `make serve-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR=127.0.0.1:17653
DIR=$(mktemp -d)
BIN="$DIR/ufabsim"
PID=
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null; rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/ufabsim

ctl() { "$BIN" ctl -addr "$ADDR" "$@"; }

wait_ready() {
	for _ in $(seq 1 100); do
		if ctl status >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "daemon never answered on $ADDR" >&2
	return 1
}

"$BIN" serve -addr "$ADDR" -store "$DIR/state" -churn &
PID=$!
wait_ready

# Drive the API: admissions, a what-if, inspection, a release.
ctl admit -id 9001 -g 1e9 -vms 2 | grep -q '"accepted": true'
ctl admit -id 9002 -g 2e9 -vms 2 | grep -q '"accepted": true'
ctl admit -id 9003 -g 5e8 -vms 3 | grep -q '"accepted": true'
ctl admit -id 9001 -g 1e9 -vms 2 | grep -q '"reason": "duplicate"'
ctl evaluate -id 9004 -g 1e9 | grep -q '"accepted": true'
ctl tenant 9002 | grep -q '"status": "Placed"'
ctl release 9003 | grep -q '"released": true'
ctl fleet | grep -q '"slots_per_host"'
ctl ledger | grep -q '"verify_ok": true'
ctl findings >/dev/null
ctl metrics | grep -q 'placement.ctl.admitted'

# Let the churn workload run, then SIGKILL mid-flight: recovery must ride
# the WAL tail, not a clean shutdown snapshot.
sleep 1
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=

"$BIN" serve -addr "$ADDR" -store "$DIR/state" -churn &
PID=$!
wait_ready

# The standing tenants survived the crash; the released one stayed gone;
# the recovered ledger verifies against the desired set.
ctl tenant 9001 | grep -q '"status": "Placed"'
ctl tenant 9002 | grep -q '"status": "Placed"'
if ctl tenant 9003 >/dev/null 2>&1; then
	echo "released tenant resurrected after restart" >&2
	exit 1
fi
ctl ledger | grep -q '"verify_ok": true'
ctl status | grep -q '"now_ps"'

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=
echo "serve smoke ok"
