module ufab

go 1.22
