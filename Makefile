# Reproduces the CI gate (.github/workflows/ci.yml) locally:
#   make ci        — everything CI runs, in the same order
#   make golden    — re-record golden_metrics.json after an intentional
#                    metric change (commit the diff)
GO ?= go

.PHONY: ci build vet fmt-check test race bench check audit golden chaos trace place fuzz serve-smoke shard results

ci: build vet fmt-check test race bench check audit shard fuzz serve-smoke
	@echo "CI gate passed"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/telemetry
	$(GO) test -race ./internal/placement
	$(GO) test -race ./internal/ctlplane
	$(GO) test -race ./internal/experiments -run 'TestParallelRunnerDeterminism|TestTelemetryParallelDeterminism|TestAuditParallelDeterminism|TestShardIdentity|TestShardedSubscribe'

# One pass over every benchmark in the tree. This is the single emitter of
# the BENCH_*.json trajectory files (BENCH_audit, BENCH_ctlplane,
# BENCH_obs, BENCH_placement, BENCH_shardsim) that CI uploads as one
# artifact; the per-figure benchmarks land in bench.txt.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./... | tee bench.txt

# The full-scale evaluation transcript (every experiment's report text).
# Generated, not committed — regenerate after metric-affecting changes.
results:
	$(GO) run ./cmd/ufabsim run all | tee full_results.txt

# The golden gate runs twice: instrumentation must never change results.
check:
	$(GO) run ./cmd/ufabsim check
	$(GO) run ./cmd/ufabsim check -telemetry

# The audit gate: every fault-free run must audit clean, chaos scenarios
# must produce their declared excused findings, and auditing must not
# change a single golden metric. Findings land in findings.jsonl; the
# auditor's overhead trajectory in BENCH_audit.json.
audit:
	$(GO) run ./cmd/ufabsim -quick -findings findings.jsonl audit all
	$(GO) run ./cmd/ufabsim check -audit
	$(GO) test -run '^$$' -bench BenchmarkAuditOverhead -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkAdmission -benchtime 100x .

# The sharded-core gate: the whole evaluation replayed on the parallel
# engine must reproduce the sequential golden numbers exactly, and the
# sequential-vs-sharded wall-clock benchmark lands in BENCH_shardsim.json
# (set UFAB_BENCH_FULL=1 on a multicore box for the 8192-host fabric).
shard:
	$(GO) run ./cmd/ufabsim check -shards 4
	$(GO) run ./cmd/ufabsim check -telemetry -shards 4
	$(GO) test -run '^$$' -bench BenchmarkShardedEngine -benchtime 1x .

golden:
	$(GO) run ./cmd/ufabsim check -update

# The fault-injection suite (internal/chaos) at full scale.
chaos:
	$(GO) run ./cmd/ufabsim run flap gray restart churn chaoslab

# The control-plane suite (internal/placement) at full scale, plus the
# admission-ledger benchmark (incremental update vs full recompute;
# trajectory lands in BENCH_placement.json).
place:
	$(GO) run ./cmd/ufabsim run placecmp placechurn placesweep
	$(GO) test -run '^$$' -bench BenchmarkAdmission -benchtime 100x .

# The control-plane service smoke gate, exactly as the CI ctlplane job
# runs it: start the daemon with a persistent store and background churn,
# drive admit/evaluate/release/findings over HTTP, SIGKILL it mid-churn,
# restart from the store and assert recovery. The sharded-ledger
# throughput trajectory lands in BENCH_ctlplane.json.
serve-smoke:
	./scripts/serve_smoke.sh
	$(GO) test -run '^$$' -bench BenchmarkCtlplaneAdmission -benchtime 100000x .

# The scenario-fuzzer smoke gate, exactly as the CI fuzz-smoke job runs
# it: package tests (oracle, shrinker, regression corpus), then a
# fixed-seed sweep that also replays the committed corpus. For a long
# randomized hunt use the nightly knobs, e.g.:
#   go run ./cmd/ufabsim fuzz -seeds 1000 -seed0 $$RANDOM -budget 20m -shrink -out fuzz-failures
fuzz:
	$(GO) test ./internal/fuzz
	$(GO) run ./cmd/ufabsim fuzz -seeds 50 -corpus internal/fuzz/testdata/regressions

# Flight-recorder sample: the chaoslab run's event stream as JSONL, and
# the same run's causal spans as Chrome trace-event JSON (open
# trace_perfetto.json in https://ui.perfetto.dev or chrome://tracing).
trace:
	$(GO) run ./cmd/ufabsim -quick trace chaoslab > trace.jsonl
	@wc -l < trace.jsonl | xargs -I{} echo "{} events in trace.jsonl"
	$(GO) run ./cmd/ufabsim -quick trace -format perfetto chaoslab > trace_perfetto.json
	@wc -c < trace_perfetto.json | xargs -I{} echo "{} bytes in trace_perfetto.json"
